// Social-network monitoring: the paper's motivating workload (§1). A
// read-dominated service needs user "engagement scores" (coreness) with
// low latency on the user-facing path, while friendship updates land in
// periodic batches on the write path.
//
// This example runs a pool of reader threads answering coreness queries
// concurrently with a stream of friendship-update batches, then prints the
// latency profile of each read strategy side by side.
//
//   $ ./example_social_network_monitor
#include <cstdio>

#include "core/read_modes.hpp"
#include "graph/batch.hpp"
#include "graph/generators.hpp"
#include "harness/workload.hpp"

int main() {
  using namespace cpkcore;

  constexpr vertex_t kUsers = 30000;
  // Scale-free friendship graph: most users have a few friends, hubs have
  // thousands — the structure that makes coreness a useful engagement
  // signal.
  auto friendships = gen::barabasi_albert(kUsers, 8, 1);
  std::printf("social graph: %u users, %zu friendships\n", kUsers,
              friendships.size());

  for (ReadMode mode :
       {ReadMode::kCplds, ReadMode::kSyncReads, ReadMode::kNonSync}) {
    CPLDS::Options opt;
    opt.track_dependencies = (mode == ReadMode::kCpldsDag);
    CPLDS ds(kUsers, LDSParams::create(kUsers), opt);

    // Warm start: most of the network exists; the update stream replays
    // the remaining 20% in batches, as new friendships arrive.
    const std::size_t warm = friendships.size() * 8 / 10;
    ds.insert_batch({friendships.begin(),
                     friendships.begin() + static_cast<std::ptrdiff_t>(warm)});
    auto stream = insertion_stream(
        {friendships.begin() + static_cast<std::ptrdiff_t>(warm),
         friendships.end()},
        10000, 3);

    harness::WorkloadConfig cfg;
    cfg.mode = mode;
    cfg.reader_threads = 4;
    cfg.seed = 99;
    auto result = harness::run_workload(ds, stream, cfg);

    std::printf(
        "%-10s reads: %8llu  avg %9.0f ns  p99 %9llu ns  p99.99 %11llu ns\n",
        std::string(to_string(mode)).c_str(),
        static_cast<unsigned long long>(result.total_reads),
        result.latency.mean_ns(),
        static_cast<unsigned long long>(result.latency.p99_ns()),
        static_cast<unsigned long long>(result.latency.p9999_ns()));
  }
  std::printf(
      "\nCPLDS keeps user-facing reads at nanosecond-to-microsecond scale\n"
      "while SyncReads-style queued reads pay the full batch latency.\n");
  return 0;
}
